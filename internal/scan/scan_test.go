package scan

import (
	"testing"
	"testing/quick"
)

func TestPolicySteps(t *testing.T) {
	cases := []struct {
		p             Policy
		pat, cyc, per int
		want          int
	}{
		{Static, 5, 9, 1, 0},
		{PerPattern, 0, 9, 1, 0},
		{PerPattern, 5, 9, 1, 5},
		{PerPattern, 5, 9, 2, 2},
		{PerPattern, 5, 9, 0, 5}, // period defaulted to 1
		{PerCycle, 0, 9, 1, 9},
		{PerCycle, 0, 0, 1, 0},
	}
	for _, tc := range cases {
		if got := tc.p.Steps(tc.pat, tc.cyc, tc.per); got != tc.want {
			t.Errorf("%v.Steps(%d,%d,%d) = %d, want %d", tc.p, tc.pat, tc.cyc, tc.per, got, tc.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Static: "static(EFF)", PerPattern: "per-pattern(DOS)", PerCycle: "per-cycle(EFF-Dyn)",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestChainValidate(t *testing.T) {
	cases := []struct {
		name    string
		c       Chain
		keyBits int
		ok      bool
	}{
		{"good", Chain{Length: 8, Gates: []KeyGate{{1, 0}, {5, 2}}}, 3, true},
		{"short chain", Chain{Length: 1}, 3, false},
		{"link 0", Chain{Length: 8, Gates: []KeyGate{{0, 0}}}, 3, false},
		{"link == n", Chain{Length: 8, Gates: []KeyGate{{8, 0}}}, 3, false},
		{"key bit oob", Chain{Length: 8, Gates: []KeyGate{{1, 3}}}, 3, false},
		{"neg key bit", Chain{Length: 8, Gates: []KeyGate{{1, -1}}}, 3, false},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(tc.keyBits); (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// The paper's Fig. 1 example: 8 flops, gates after flops 1, 2, 5.
func fig1Chain() Chain {
	return Chain{Length: 8, Gates: []KeyGate{{Link: 1, KeyBit: 0}, {Link: 2, KeyBit: 1}, {Link: 5, KeyBit: 2}}}
}

func TestInMaskTermsFig1(t *testing.T) {
	c := fig1Chain()
	// Flop 0 crosses no links.
	if got := c.InMaskTerms(0); len(got) != 0 {
		t.Fatalf("flop 0 terms = %v", got)
	}
	// Flop 7 (enters at cycle 0) crosses links 1,2,5 at cycles 1,2,5.
	got := c.InMaskTerms(7)
	want := []Term{{1, 0}, {2, 1}, {5, 2}}
	if len(got) != len(want) {
		t.Fatalf("flop 7 terms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flop 7 term %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Flop 3 (enters at cycle 4) crosses links 1,2 at cycles 5,6.
	got = c.InMaskTerms(3)
	want = []Term{{5, 0}, {6, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flop 3 term %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOutMaskTermsFig1(t *testing.T) {
	c := fig1Chain()
	// Flop 7 is read directly: no links crossed.
	if got := c.OutMaskTerms(7); len(got) != 0 {
		t.Fatalf("flop 7 out terms = %v", got)
	}
	// Flop 0 crosses links 1,2,5 at cycles n+1-0=9, 10, 13.
	got := c.OutMaskTerms(0)
	want := []Term{{9, 0}, {10, 1}, {13, 2}}
	if len(got) != len(want) {
		t.Fatalf("flop 0 out terms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flop 0 out term %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Flop 4 crosses link 5 at cycle 8+5-4=9.
	got = c.OutMaskTerms(4)
	if len(got) != 1 || got[0] != (Term{9, 2}) {
		t.Fatalf("flop 4 out terms = %v", got)
	}
}

func TestMaskTermCyclesInRange(t *testing.T) {
	c := Chain{Length: 12, Gates: SpreadGates(12, 8, 8)}
	for j := 0; j < c.Length; j++ {
		for _, term := range c.InMaskTerms(j) {
			if term.Cycle < 0 || term.Cycle >= c.CaptureCycle() {
				t.Fatalf("in term cycle %d outside shift-in window", term.Cycle)
			}
		}
		for _, term := range c.OutMaskTerms(j) {
			if term.Cycle <= c.CaptureCycle() || term.Cycle > 2*c.Length {
				t.Fatalf("out term cycle %d outside shift-out window", term.Cycle)
			}
		}
	}
	if c.SessionCycles() != 25 {
		t.Fatalf("SessionCycles = %d", c.SessionCycles())
	}
}

func TestSpreadGates(t *testing.T) {
	g := SpreadGates(160, 128, 128)
	if len(g) != 128 {
		t.Fatalf("len = %d", len(g))
	}
	seen := map[int]bool{}
	for i, kg := range g {
		if kg.Link < 1 || kg.Link > 159 {
			t.Fatalf("gate %d link %d out of range", i, kg.Link)
		}
		if seen[kg.Link] {
			t.Fatalf("duplicate link %d with count <= links", kg.Link)
		}
		seen[kg.Link] = true
		if kg.KeyBit != i {
			t.Fatalf("gate %d keybit %d", i, kg.KeyBit)
		}
	}
	c := Chain{Length: 160, Gates: g}
	if err := c.Validate(128); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadGatesMoreThanLinks(t *testing.T) {
	g := SpreadGates(5, 10, 10) // 4 links, 10 gates: links reused
	if len(g) != 10 {
		t.Fatalf("len = %d", len(g))
	}
	c := Chain{Length: 5, Gates: g}
	if err := c.Validate(10); err != nil {
		t.Fatal(err)
	}
	bits := map[int]bool{}
	for _, kg := range g {
		bits[kg.KeyBit] = true
	}
	if len(bits) != 10 {
		t.Fatalf("key bits used: %d, want 10", len(bits))
	}
}

func TestSpreadGatesDegenerate(t *testing.T) {
	if SpreadGates(1, 3, 3) != nil || SpreadGates(8, 0, 3) != nil || SpreadGates(8, 3, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestMaskTermsPanicOnBadFlop(t *testing.T) {
	c := fig1Chain()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.InMaskTerms(8)
}

// Property: for random chains, every in-mask term cycle lies strictly
// before the capture cycle, every out-mask term strictly after, and a
// gate's key bit appears in the in-mask of exactly the flops at or past
// its link.
func TestMaskTermsQuick(t *testing.T) {
	f := func(lengthSeed, gateSeed uint8) bool {
		length := 2 + int(lengthSeed%30)
		nGates := 1 + int(gateSeed%10)
		c := Chain{Length: length, Gates: SpreadGates(length, nGates, nGates)}
		for j := 0; j < length; j++ {
			inTerms := c.InMaskTerms(j)
			for _, term := range inTerms {
				if term.Cycle < 0 || term.Cycle >= c.CaptureCycle() {
					return false
				}
			}
			for _, term := range c.OutMaskTerms(j) {
				if term.Cycle <= c.CaptureCycle() || term.Cycle > 2*length {
					return false
				}
			}
			// Count of in-terms equals gates with link <= j.
			want := 0
			for _, g := range c.Gates {
				if g.Link <= j {
					want++
				}
			}
			if len(inTerms) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: multi-capture out-mask cycles are the single-capture cycles
// shifted by captures-1.
func TestOutMaskTermsNShiftQuick(t *testing.T) {
	f := func(lengthSeed, capSeed uint8) bool {
		length := 2 + int(lengthSeed%30)
		captures := 1 + int(capSeed%4)
		c := Chain{Length: length, Gates: SpreadGates(length, 4, 4)}
		for j := 0; j < length; j++ {
			base := c.OutMaskTerms(j)
			multi := c.OutMaskTermsN(j, captures)
			if len(base) != len(multi) {
				return false
			}
			for i := range base {
				if multi[i].Cycle != base[i].Cycle+captures-1 || multi[i].KeyBit != base[i].KeyBit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
