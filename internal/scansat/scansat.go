// Package scansat implements the ScanSAT attack (Alrahis et al., ASP-DAC
// 2019) on statically obfuscated scan chains — the baseline that DynUnlock
// generalizes (paper Table I, row "EFF → ScanSAT").
//
// With a static key the scan-in/scan-out masks are fixed XOR functions of
// the key register, so the obfuscated chain unrolls into a combinational
// locked circuit whose key inputs are the register bits directly. That is
// exactly DynUnlock's model with the identity key schedule; this package is
// the thin instantiation of the shared machinery, packaged under the
// baseline's own name and with key-register values (not LFSR seeds) as its
// result vocabulary.
package scansat

import (
	"context"
	"fmt"

	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/scan"
)

// Result reports a ScanSAT run.
type Result struct {
	// KeyCandidates are the recovered static scan-key values.
	KeyCandidates []gf2.Vec
	// Exact reports complete enumeration.
	Exact bool
	// Iterations is the SAT-attack DIP count.
	Iterations int
	// Converged reports miter-UNSAT convergence.
	Converged bool
	// Stopped and StopReason report a deadline/cancellation/budget bound
	// (see core.Result); the candidate set is then possibly incomplete.
	Stopped    bool
	StopReason core.StopReason
}

// Options tunes the attack.
type Options struct {
	// EnumerateLimit bounds candidate enumeration (0 selects 256).
	EnumerateLimit int
	// TestKey is the mismatching external test key (nil = all zeros).
	TestKey []bool
}

// Attack runs ScanSAT against a statically locked chip. Attack is
// AttackCtx under context.Background().
func Attack(chip core.Chip, opts Options) (*Result, error) {
	return AttackCtx(context.Background(), chip, opts)
}

// AttackCtx is Attack with cancellation and tracing, with the partial-result
// semantics of core.AttackCtx.
func AttackCtx(ctx context.Context, chip core.Chip, opts Options) (*Result, error) {
	if p := chip.Design().Config.Policy; p != scan.Static {
		return nil, fmt.Errorf("scansat: design uses %v; ScanSAT handles static scan locking only (use DynUnlock)", p)
	}
	res, err := core.AttackCtx(ctx, chip, core.Options{
		EnumerateLimit: opts.EnumerateLimit,
		TestKey:        opts.TestKey,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		KeyCandidates: res.SeedCandidates,
		Exact:         res.Exact,
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		Stopped:       res.Stopped,
		StopReason:    res.StopReason,
	}, nil
}
