package scansat

import (
	"math/rand"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
)

func staticChip(t *testing.T, ffs, keyBits int, seedSrc int64) *oracle.Chip {
	t.Helper()
	n, err := bench.Generate(bench.GenConfig{Name: "t", PIs: 5, POs: 3, FFs: ffs, Gates: 8 * ffs, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: keyBits, Policy: scan.Static})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seedSrc))
	key := gf2.NewVec(keyBits)
	for i := 0; i < keyBits; i++ {
		if rng.Intn(2) == 1 {
			key.Set(i, true)
		}
	}
	auth := make([]bool, keyBits)
	auth[0] = true
	chip, err := oracle.New(d, key, auth)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestScanSATRecoversStaticKey(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		chip := staticChip(t, 10, 6, 100+trial)
		res, err := Attack(chip, Options{EnumerateLimit: 64})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || !res.Exact {
			t.Fatalf("trial %d: converged=%v exact=%v", trial, res.Converged, res.Exact)
		}
		found := false
		for _, k := range res.KeyCandidates {
			if k.Equal(chip.SecretSeed()) {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: static key not recovered", trial)
		}
	}
}

func TestScanSATRejectsDynamic(t *testing.T) {
	n, err := bench.Generate(bench.GenConfig{Name: "t", PIs: 5, POs: 3, FFs: 8, Gates: 64, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: 4, Policy: scan.PerCycle})
	if err != nil {
		t.Fatal(err)
	}
	chip, err := oracle.New(d, gf2.Unit(4, 0), []bool{true, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attack(chip, Options{}); err == nil {
		t.Fatal("ScanSAT must refuse dynamic designs")
	}
}
