package sim

import (
	"dynunlock/internal/aig"
	"dynunlock/internal/netlist"
)

// AIGComb is the AIG fast path of the combinational simulator: the view is
// compiled once into a compacted arena (structural hashing, constant
// folding, cone-of-influence restriction) and evaluation sweeps the flat
// node slice instead of chasing netlist fanin lists. Results are
// bit-identical to Comb on every pattern; only the traversal cost differs.
type AIGComb struct {
	view *netlist.CombView
	sim  *aig.Sim
}

// NewAIGComb compiles v and returns its fast-path simulator.
func NewAIGComb(v *netlist.CombView) (*AIGComb, error) {
	g, err := aig.FromCombView(v)
	if err != nil {
		return nil, err
	}
	return &AIGComb{view: v, sim: aig.NewSim(g)}, nil
}

// View returns the underlying combinational view.
func (c *AIGComb) View() *netlist.CombView { return c.view }

// Eval evaluates 64 patterns at once, like Comb.Eval.
func (c *AIGComb) Eval(inputs []uint64) []uint64 { return c.sim.Eval(inputs) }

// EvalBits evaluates a single pattern of bools.
func (c *AIGComb) EvalBits(in []bool) []bool {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	out := c.Eval(words)
	bits := make([]bool, len(out))
	for i, w := range out {
		bits[i] = w&1 == 1
	}
	return bits
}

// NewSeqAIG builds a sequential simulator whose combinational core runs on
// the AIG fast path. Functionally identical to NewSeq.
func NewSeqAIG(v *netlist.CombView) (*Seq, error) {
	c, err := NewAIGComb(v)
	if err != nil {
		return nil, err
	}
	return &Seq{comb: c, state: make([]bool, len(v.N.DFFs()))}, nil
}
