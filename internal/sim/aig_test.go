package sim

import (
	"math/rand"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/netlist"
)

// The AIG fast path must be cycle-for-cycle identical to the gate-level
// sequential simulator.
func TestSeqAIGMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for seed := int64(0); seed < 4; seed++ {
		n, err := bench.Generate(bench.GenConfig{
			Name: "seqaig", PIs: 6, POs: 5, FFs: 10, Gates: 80, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, err := netlist.NewCombView(n)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewSeq(v)
		fast, err := NewSeqAIG(v)
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 50; cycle++ {
			pi := make([]bool, v.NumPI)
			for i := range pi {
				pi[i] = rng.Intn(2) == 1
			}
			want := ref.Step(pi)
			got := fast.Step(pi)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d cycle %d po %d: aig=%v gate=%v", seed, cycle, i, got[i], want[i])
				}
			}
		}
		ws, gs := ref.State(), fast.State()
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("seed %d: state diverged at flop %d", seed, i)
			}
		}
	}
}
