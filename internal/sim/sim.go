// Package sim evaluates gate-level netlists. Simulation is levelized and
// 64-way bit-parallel: each signal carries a 64-bit word, so one pass
// evaluates 64 independent patterns. Single-pattern helpers are layered on
// top. A sequential stepper provides cycle-accurate functional simulation.
package sim

import (
	"fmt"

	"dynunlock/internal/netlist"
)

// Comb is a reusable combinational simulator over a netlist.CombView.
type Comb struct {
	view *netlist.CombView
	vals []uint64
}

// NewComb builds a simulator for the given view. Constant signals are
// materialized once here; gate evaluation never overwrites them.
func NewComb(v *netlist.CombView) *Comb {
	c := &Comb{view: v, vals: make([]uint64, v.N.NumSignals())}
	for id := 0; id < v.N.NumSignals(); id++ {
		switch v.N.Type(netlist.SignalID(id)) {
		case netlist.Const0:
			c.vals[id] = 0
		case netlist.Const1:
			c.vals[id] = ^uint64(0)
		}
	}
	return c
}

// View returns the underlying combinational view.
func (c *Comb) View() *netlist.CombView { return c.view }

// Eval evaluates 64 patterns at once. inputs[i] supplies the 64 values of
// view.Inputs[i]; the result has one word per view.Outputs entry. The
// returned slice is owned by the caller.
func (c *Comb) Eval(inputs []uint64) []uint64 {
	if len(inputs) != len(c.view.Inputs) {
		panic(fmt.Sprintf("sim: got %d input words, want %d", len(inputs), len(c.view.Inputs)))
	}
	n := c.view.N
	for i, s := range c.view.Inputs {
		c.vals[s] = inputs[i]
	}
	for _, id := range c.view.Order {
		g := n.Gate(id)
		c.vals[id] = evalGate(g, c.vals)
	}
	out := make([]uint64, len(c.view.Outputs))
	for i, s := range c.view.Outputs {
		out[i] = c.vals[s]
	}
	return out
}

func evalGate(g netlist.Gate, vals []uint64) uint64 {
	switch g.Type {
	case netlist.Buf:
		return faninVal(g.Fanin[0], vals)
	case netlist.Not:
		return ^faninVal(g.Fanin[0], vals)
	case netlist.And, netlist.Nand:
		acc := ^uint64(0)
		for _, f := range g.Fanin {
			acc &= faninVal(f, vals)
		}
		if g.Type == netlist.Nand {
			return ^acc
		}
		return acc
	case netlist.Or, netlist.Nor:
		var acc uint64
		for _, f := range g.Fanin {
			acc |= faninVal(f, vals)
		}
		if g.Type == netlist.Nor {
			return ^acc
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		var acc uint64
		for _, f := range g.Fanin {
			acc ^= faninVal(f, vals)
		}
		if g.Type == netlist.Xnor {
			return ^acc
		}
		return acc
	case netlist.Mux:
		sel := faninVal(g.Fanin[0], vals)
		d0 := faninVal(g.Fanin[1], vals)
		d1 := faninVal(g.Fanin[2], vals)
		return (d0 &^ sel) | (d1 & sel)
	default:
		panic(fmt.Sprintf("sim: cannot evaluate gate type %v", g.Type))
	}
}

func faninVal(f netlist.SignalID, vals []uint64) uint64 { return vals[f] }

// EvalBits evaluates a single pattern of bools.
func (c *Comb) EvalBits(in []bool) []bool {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	out := c.Eval(words)
	bits := make([]bool, len(out))
	for i, w := range out {
		bits[i] = w&1 == 1
	}
	return bits
}

// combEval is the combinational core a Seq steps: the gate-level Comb or
// the AIG fast path (AIGComb).
type combEval interface {
	EvalBits(in []bool) []bool
	View() *netlist.CombView
}

// Seq is a cycle-accurate sequential simulator: it holds the flip-flop
// state and advances one functional clock per Step.
type Seq struct {
	comb  combEval
	state []bool // one per DFF, in netlist.DFFs() order
}

// NewSeq builds a sequential simulator with all-zero initial state.
func NewSeq(v *netlist.CombView) *Seq {
	return &Seq{comb: NewComb(v), state: make([]bool, len(v.N.DFFs()))}
}

// Reset clears the flip-flop state to all zeros.
func (s *Seq) Reset() {
	for i := range s.state {
		s.state[i] = false
	}
}

// State returns a copy of the current flip-flop state.
func (s *Seq) State() []bool { return append([]bool(nil), s.state...) }

// SetState overwrites the flip-flop state.
func (s *Seq) SetState(st []bool) {
	if len(st) != len(s.state) {
		panic(fmt.Sprintf("sim: state length %d, want %d", len(st), len(s.state)))
	}
	copy(s.state, st)
}

// Outputs evaluates the primary outputs for the given PI values under the
// current state, without advancing the clock.
func (s *Seq) Outputs(pi []bool) []bool {
	out := s.evalAll(pi)
	return out[:s.comb.View().NumPO]
}

// Step applies pi for one clock cycle: primary outputs are sampled before
// the edge, then the state advances to the next-state values.
func (s *Seq) Step(pi []bool) (po []bool) {
	out := s.evalAll(pi)
	po = append([]bool(nil), out[:s.comb.View().NumPO]...)
	copy(s.state, out[s.comb.View().NumPO:])
	return po
}

func (s *Seq) evalAll(pi []bool) []bool {
	v := s.comb.View()
	if len(pi) != v.NumPI {
		panic(fmt.Sprintf("sim: got %d PIs, want %d", len(pi), v.NumPI))
	}
	in := make([]bool, len(v.Inputs))
	copy(in, pi)
	copy(in[v.NumPI:], s.state)
	return s.comb.EvalBits(in)
}
