package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dynunlock/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.CombView {
	t.Helper()
	n, err := netlist.ParseBench(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGateTruthTables(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(oand) OUTPUT(onand) OUTPUT(oor) OUTPUT(onor)
OUTPUT(oxor) OUTPUT(oxnor) OUTPUT(onot) OUTPUT(obuf) OUTPUT(omux)
OUTPUT(ocz) OUTPUT(oco)
oand = AND(a, b)
onand = NAND(a, b)
oor = OR(a, b)
onor = NOR(a, b)
oxor = XOR(a, b)
oxnor = XNOR(a, b)
onot = NOT(a)
obuf = BUFF(a)
omux = MUX(a, b, c)
ocz = gnd
oco = vcc
`
	// OUTPUT statements must be on separate lines for the parser; rewrite.
	src = strings.ReplaceAll(src, ") OUTPUT", ")\nOUTPUT")
	v := mustParse(t, src)
	c := NewComb(v)
	for pat := 0; pat < 8; pat++ {
		a, b, cc := pat&1 == 1, pat&2 == 2, pat&4 == 4
		out := c.EvalBits([]bool{a, b, cc})
		mux := b
		if a {
			mux = cc
		}
		want := []bool{a && b, !(a && b), a || b, !(a || b), a != b, a == b, !a, a, mux, false, true}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("pattern %d output %d (%s): got %v want %v",
					pat, i, v.N.SignalName(v.Outputs[i]), out[i], want[i])
			}
		}
	}
}

func TestMultiInputGates(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(x)
OUTPUT(y)
x = XOR(a, b, c, d)
y = NAND(a, b, c, d)
`
	v := mustParse(t, src)
	c := NewComb(v)
	for pat := 0; pat < 16; pat++ {
		in := []bool{pat&1 != 0, pat&2 != 0, pat&4 != 0, pat&8 != 0}
		out := c.EvalBits(in)
		parity := in[0] != in[1] != in[2] != in[3]
		nand := !(in[0] && in[1] && in[2] && in[3])
		if out[0] != parity || out[1] != nand {
			t.Fatalf("pattern %d: got %v", pat, out)
		}
	}
}

// Bit-parallel evaluation must agree with 64 sequential single-bit runs.
func TestBitParallelConsistency(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
t1 = AND(a, b)
t2 = XOR(t1, c)
t3 = NOR(a, t2)
z = MUX(t3, t1, t2)
`
	v := mustParse(t, src)
	c := NewComb(v)
	rng := rand.New(rand.NewSource(21))
	words := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64()}
	outWords := c.Eval(words)
	for bit := 0; bit < 64; bit++ {
		in := []bool{words[0]>>uint(bit)&1 == 1, words[1]>>uint(bit)&1 == 1, words[2]>>uint(bit)&1 == 1}
		out := c.EvalBits(in)
		if out[0] != (outWords[0]>>uint(bit)&1 == 1) {
			t.Fatalf("bit %d mismatch", bit)
		}
	}
}

const counterSrc = `
# 2-bit counter with enable: q0' = q0 XOR en ; q1' = q1 XOR (q0 AND en)
INPUT(en)
OUTPUT(q1)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
t = AND(q0, en)
d1 = XOR(q1, t)
`

func TestSeqCounter(t *testing.T) {
	v := mustParse(t, counterSrc)
	s := NewSeq(v)
	// Count 5 enabled cycles: state should be 5 mod 4 = 01 (q0=1, q1=0).
	for i := 0; i < 5; i++ {
		s.Step([]bool{true})
	}
	st := s.State()
	if st[0] != true || st[1] != false {
		t.Fatalf("state after 5 = %v", st)
	}
	// Two disabled cycles: unchanged.
	s.Step([]bool{false})
	s.Step([]bool{false})
	st = s.State()
	if st[0] != true || st[1] != false {
		t.Fatalf("state after idle = %v", st)
	}
	// q1 output is sampled pre-edge.
	s.Reset()
	po := s.Step([]bool{true})
	if po[0] != false {
		t.Fatal("PO must be pre-edge value")
	}
	if got := s.Outputs([]bool{false}); got[0] != false {
		t.Fatalf("Outputs = %v", got)
	}
	for i := 0; i < 1; i++ {
		s.Step([]bool{true})
	}
	// state now 2 -> q1 = 1
	if got := s.Outputs([]bool{false}); got[0] != true {
		t.Fatalf("q1 after 2 counts = %v", got)
	}
}

func TestSeqSetState(t *testing.T) {
	v := mustParse(t, counterSrc)
	s := NewSeq(v)
	s.SetState([]bool{true, true})
	if got := s.Outputs([]bool{false}); got[0] != true {
		t.Fatal("SetState not honored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on bad state length")
		}
	}()
	s.SetState([]bool{true})
}

func TestEvalInputCountPanics(t *testing.T) {
	v := mustParse(t, counterSrc)
	c := NewComb(v)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.Eval([]uint64{1})
}

func TestConstFeedingGate(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
one = vcc
z = AND(a, one)
`
	v := mustParse(t, src)
	c := NewComb(v)
	if got := c.EvalBits([]bool{true}); !got[0] {
		t.Fatal("AND with vcc lost the input")
	}
	if got := c.EvalBits([]bool{false}); got[0] {
		t.Fatal("AND with vcc stuck high")
	}
}

func BenchmarkEval64Patterns(b *testing.B) {
	// Random 2000-gate circuit.
	n := netlist.New("bench")
	rng := rand.New(rand.NewSource(5))
	var sigs []netlist.SignalID
	for i := 0; i < 32; i++ {
		id, _ := n.AddInput("")
		sigs = append(sigs, id)
	}
	types := []netlist.GateType{netlist.And, netlist.Or, netlist.Xor, netlist.Nand, netlist.Nor}
	for i := 0; i < 2000; i++ {
		a := sigs[rng.Intn(len(sigs))]
		bb := sigs[rng.Intn(len(sigs))]
		id, err := n.AddGate("", types[rng.Intn(len(types))], a, bb)
		if err != nil {
			b.Fatal(err)
		}
		sigs = append(sigs, id)
	}
	n.MarkOutput(sigs[len(sigs)-1])
	v, err := netlist.NewCombView(n)
	if err != nil {
		b.Fatal(err)
	}
	c := NewComb(v)
	in := make([]uint64, 32)
	for i := range in {
		in[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Eval(in)
	}
}

// Property (testing/quick): simulation is deterministic and word-parallel
// evaluation distributes over bit position for random input words.
func TestEvalDeterministicQuick(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
t1 = NAND(a, b)
t2 = XOR(t1, c)
z = NOR(t2, a)
`
	v := mustParse(t, src)
	c := NewComb(v)
	f := func(w0, w1, w2 uint64) bool {
		in := []uint64{w0, w1, w2}
		out1 := c.Eval(in)
		out2 := c.Eval(in)
		if out1[0] != out2[0] {
			return false
		}
		for bit := 0; bit < 64; bit += 17 {
			bits := c.EvalBits([]bool{w0>>uint(bit)&1 == 1, w1>>uint(bit)&1 == 1, w2>>uint(bit)&1 == 1})
			if bits[0] != (out1[0]>>uint(bit)&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
