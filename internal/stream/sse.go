package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Server-Sent-Events framing for the feed. One Event becomes one SSE
// frame:
//
//	id: <seq>             (omitted when Seq == 0: synthesized events
//	                       never disturb the client's Last-Event-ID)
//	event: <type>
//	data: <event JSON>    ({"seq","type","t","data"})
//	<blank line>
//
// The data payload is the complete Event envelope — the same JSON a
// -progress=json line carries — so the SSE feed, headless logs, and
// `runs watch` all share one parser (Decoder / ParseEvent). Keep-alive
// is a standard SSE comment line (": keep-alive"); the decoder skips
// comments and tolerates retry: hints.

// ErrCorrupt reports a malformed SSE stream or event envelope. `runs
// watch` maps it to its corrupt-stream exit code.
var ErrCorrupt = errors.New("stream: corrupt event stream")

// WriteEvent writes ev as one SSE frame. The caller flushes.
func WriteEvent(w io.Writer, ev Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.Grow(len(payload) + 48)
	if ev.Seq > 0 {
		b.WriteString("id: ")
		b.WriteString(strconv.FormatUint(ev.Seq, 10))
		b.WriteByte('\n')
	}
	b.WriteString("event: ")
	b.WriteString(ev.Type)
	b.WriteByte('\n')
	b.WriteString("data: ")
	b.Write(payload)
	b.WriteString("\n\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// WriteComment writes an SSE comment frame (": msg"). Comments carry no
// event and exist to keep idle connections alive through proxies.
func WriteComment(w io.Writer, msg string) error {
	_, err := io.WriteString(w, ": "+msg+"\n\n")
	return err
}

// ParseEvent decodes one event envelope (a data: payload or one
// -progress=json line), enforcing the schema: valid JSON with a known
// type.
func ParseEvent(b []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch ev.Type {
	case TypeHello, TypeSnapshot, TypeDelta, TypeDIP, TypeInsight, TypeSpan, TypeResult, TypeStage, TypeJob:
		return ev, nil
	case "":
		return Event{}, fmt.Errorf("%w: event without a type", ErrCorrupt)
	}
	return Event{}, fmt.Errorf("%w: unknown event type %q", ErrCorrupt, ev.Type)
}

// Decoder reads SSE frames back into Events, validating the wire grammar
// as it goes: field lines must be id/event/data/retry or comments, the
// id line must equal the envelope's seq, and the event line must equal
// the envelope's type. It is the parser behind `runs watch` and the
// stream conformance tests.
type Decoder struct {
	sc *bufio.Scanner
}

// NewDecoder wraps r. Frames up to ~4MiB are accepted (snapshots of
// large label spaces are the big ones).
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Decoder{sc: sc}
}

// Next returns the next event. io.EOF signals a cleanly ended stream;
// any grammar violation returns an error wrapping ErrCorrupt.
func (d *Decoder) Next() (Event, error) {
	var (
		id      string
		typ     string
		data    []string
		inFrame bool
	)
	for d.sc.Scan() {
		line := d.sc.Text()
		line = strings.TrimSuffix(line, "\r")
		if line == "" {
			if !inFrame {
				continue // stray blank between frames
			}
			if len(data) == 0 {
				// id-/event-only frames carry nothing we emit; per the SSE
				// spec a frame without data dispatches no event.
				id, typ, inFrame = "", "", false
				continue
			}
			return d.assemble(id, typ, data)
		}
		if strings.HasPrefix(line, ":") {
			continue // comment / keep-alive
		}
		field, value, ok := strings.Cut(line, ":")
		if !ok {
			return Event{}, fmt.Errorf("%w: line %q has no field separator", ErrCorrupt, line)
		}
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			id = value
		case "event":
			typ = value
		case "data":
			data = append(data, value)
		case "retry":
			// reconnect hint; nothing to validate
		default:
			return Event{}, fmt.Errorf("%w: unknown SSE field %q", ErrCorrupt, field)
		}
		inFrame = true
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, err
	}
	if inFrame {
		return Event{}, fmt.Errorf("%w: stream ended mid-frame", ErrCorrupt)
	}
	return Event{}, io.EOF
}

// assemble validates one complete frame against its envelope.
func (d *Decoder) assemble(id, typ string, data []string) (Event, error) {
	ev, err := ParseEvent([]byte(strings.Join(data, "\n")))
	if err != nil {
		return Event{}, err
	}
	if typ != "" && typ != ev.Type {
		return Event{}, fmt.Errorf("%w: event line %q disagrees with envelope type %q", ErrCorrupt, typ, ev.Type)
	}
	if id != "" {
		seq, perr := strconv.ParseUint(id, 10, 64)
		if perr != nil || seq != ev.Seq {
			return Event{}, fmt.Errorf("%w: id line %q disagrees with envelope seq %d", ErrCorrupt, id, ev.Seq)
		}
	}
	return ev, nil
}
