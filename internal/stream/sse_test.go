package stream

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestWriteEventFraming(t *testing.T) {
	var b strings.Builder
	ev := Event{Seq: 7, Type: TypeDIP, Time: time.Unix(0, 0).UTC(), Data: map[string]any{"iteration": 3}}
	if err := WriteEvent(&b, ev); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	lines := strings.Split(got, "\n")
	if lines[0] != "id: 7" {
		t.Fatalf("id line = %q", lines[0])
	}
	if lines[1] != "event: dip" {
		t.Fatalf("event line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "data: {") {
		t.Fatalf("data line = %q", lines[2])
	}
	if !strings.HasSuffix(got, "\n\n") {
		t.Fatalf("frame not terminated by a blank line: %q", got)
	}
}

func TestWriteEventOmitsIDForSynthesizedEvents(t *testing.T) {
	var b strings.Builder
	if err := WriteEvent(&b, Event{Type: TypeHello, Time: time.Unix(0, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "id:") {
		t.Fatalf("hello frame carries an id line: %q", b.String())
	}
}

func TestRoundTrip(t *testing.T) {
	var b strings.Builder
	events := []Event{
		{Type: TypeHello, Time: time.Now().UTC(), Data: map[string]any{"proto": float64(Proto)}},
		{Seq: 1, Type: TypeSnapshot, Time: time.Now().UTC(), Data: map[string]any{"dynunlock_sat_conflicts_total": 12.0}},
		{Seq: 2, Type: TypeDelta, Time: time.Now().UTC(), Data: map[string]any{"iterations": 3.0}},
		{Seq: 3, Type: TypeResult, Time: time.Now().UTC(), Data: map[string]any{"scope": "experiment"}},
	}
	for i, ev := range events {
		if err := WriteEvent(&b, ev); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i == 1 {
			if err := WriteComment(&b, "keep-alive"); err != nil {
				t.Fatal(err)
			}
		}
	}
	d := NewDecoder(strings.NewReader(b.String()))
	for i, want := range events {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type {
			t.Fatalf("decode %d: got seq=%d type=%q, want seq=%d type=%q", i, got.Seq, got.Type, want.Seq, want.Type)
		}
		for k, v := range want.Data {
			if got.Data[k] != v {
				t.Fatalf("decode %d: data[%q] = %v, want %v", i, k, got.Data[k], v)
			}
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("trailing Next err = %v, want io.EOF", err)
	}
}

func TestDecoderToleratesCommentsAndRetry(t *testing.T) {
	in := ": welcome\n\nretry: 1000\nevent: delta\ndata: {\"seq\":1,\"type\":\"delta\",\"t\":\"2026-01-01T00:00:00Z\"}\nid: 1\n\n"
	d := NewDecoder(strings.NewReader(in))
	ev, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != TypeDelta || ev.Seq != 1 {
		t.Fatalf("got %+v", ev)
	}
}

func TestDecoderJoinsMultilineData(t *testing.T) {
	in := "event: insight\ndata: {\"seq\":2,\"type\":\"insight\",\ndata: \"t\":\"2026-01-01T00:00:00Z\"}\n\n"
	d := NewDecoder(strings.NewReader(in))
	ev, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != TypeInsight || ev.Seq != 2 {
		t.Fatalf("got %+v", ev)
	}
}

func TestDecoderCorruptCases(t *testing.T) {
	cases := map[string]string{
		"id mismatch":     "id: 9\nevent: delta\ndata: {\"seq\":1,\"type\":\"delta\",\"t\":\"2026-01-01T00:00:00Z\"}\n\n",
		"type mismatch":   "event: dip\ndata: {\"seq\":1,\"type\":\"delta\",\"t\":\"2026-01-01T00:00:00Z\"}\n\n",
		"unknown type":    "event: bogus\ndata: {\"seq\":1,\"type\":\"bogus\",\"t\":\"2026-01-01T00:00:00Z\"}\n\n",
		"missing type":    "data: {\"seq\":1,\"t\":\"2026-01-01T00:00:00Z\"}\n\n",
		"bad json":        "event: delta\ndata: {nope\n\n",
		"no separator":    "garbage line\n\n",
		"unknown field":   "bogusfield: x\ndata: {\"type\":\"delta\",\"t\":\"2026-01-01T00:00:00Z\"}\n\n",
		"truncated frame": "event: delta\ndata: {\"seq\":1,\"type\":\"delta\",\"t\":\"2026-01-01T00:00:00Z\"}",
		"non-numeric id":  "id: xyz\nevent: delta\ndata: {\"seq\":1,\"type\":\"delta\",\"t\":\"2026-01-01T00:00:00Z\"}\n\n",
	}
	for name, in := range cases {
		d := NewDecoder(strings.NewReader(in))
		if _, err := d.Next(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDecoderSkipsDatalessFrames(t *testing.T) {
	in := "id: 5\nevent: delta\n\nevent: result\ndata: {\"seq\":6,\"type\":\"result\",\"t\":\"2026-01-01T00:00:00Z\"}\nid: 6\n\n"
	d := NewDecoder(strings.NewReader(in))
	ev, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != TypeResult {
		t.Fatalf("got %q, want the result frame (dataless frame dispatches nothing)", ev.Type)
	}
}

func TestParseEventRejectsEmptyAndUnknown(t *testing.T) {
	if _, err := ParseEvent([]byte(`{"type":"delta","t":"2026-01-01T00:00:00Z"}`)); err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
	if _, err := ParseEvent([]byte(`{"t":"2026-01-01T00:00:00Z"}`)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing type: err = %v", err)
	}
	if _, err := ParseEvent([]byte(`{"type":"nope","t":"2026-01-01T00:00:00Z"}`)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown type: err = %v", err)
	}
	if _, err := ParseEvent([]byte("not json")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad json: err = %v", err)
	}
}

func TestJobTagSurvivesSSERoundTrip(t *testing.T) {
	var buf strings.Builder
	in := Event{Seq: 7, Type: TypeJob, Job: "job-3", Time: time.Unix(0, 0).UTC(),
		Data: map[string]any{"state": "running"}}
	if err := WriteEvent(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder(strings.NewReader(buf.String())).Next()
	if err != nil {
		t.Fatal(err)
	}
	if out.Job != "job-3" || out.Type != TypeJob || out.Seq != 7 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	// Untagged events must not grow a job field on the wire.
	buf.Reset()
	if err := WriteEvent(&buf, Event{Seq: 8, Type: TypeDelta, Time: time.Unix(0, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "job") {
		t.Fatalf("untagged event leaked a job field: %q", buf.String())
	}
}
