// Package stream is the live-streaming layer of the attack stack: a
// dependency-free, race-safe event bus that merges the existing
// telemetry extension points — metrics.Registry snapshots and deltas,
// trace.Sink span fan-in, satattack OnDIP records, insight rank/ETA
// updates — into one ordered, typed event feed.
//
// The bus never blocks the attack hot path. Every subscriber owns a
// fixed-size ring buffer; when a slow client falls behind, the oldest
// buffered events are dropped (and counted exactly — Subscriber.Dropped)
// rather than stalling the publisher. With no subscribers attached the
// bus publishes nothing and allocates nothing beyond one atomic load per
// Publish call; TestStreamDoesNotPerturbAttack (package dynunlock) pins
// the attack path bit-identical in that state.
//
// Events carry a strictly increasing sequence number. The bus keeps a
// global resume ring of the most recent events so a reconnecting
// subscriber can continue from its SSE Last-Event-ID; when the requested
// position has already been evicted the subscriber is flagged (Gap) and
// resumes from the oldest retained event. Sequence numbers advance only
// while at least one subscriber is attached — events that nobody was
// listening for are never assigned a number, so resume is exact within
// the stream's own numbering.
//
// SSE framing for the feed lives in sse.go; the /events endpoint and
// /live dashboard are in internal/metrics (the -metrics-addr mux), and
// `runs watch` is the terminal client.
package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Event types, in the order a client typically sees them. The taxonomy
// is documented in DESIGN.md §3j.
const (
	// TypeHello opens every SSE connection: protocol version, the bus's
	// last assigned sequence number, and whether a Last-Event-ID resume
	// was honored. Synthesized per subscriber (Seq 0, no id line).
	TypeHello = "hello"
	// TypeSnapshot is a full metrics-registry dump: every published
	// series keyed "name{label=\"v\"}". Sent once on connect, and once
	// more as the final frame of a graceful drain, so the stream both
	// starts and ends with absolute totals.
	TypeSnapshot = "snapshot"
	// TypeDelta is the periodic progress sample (metrics.Progress
	// cadence): iterations, conflict/propagation rates, learnt DB,
	// oracle cycles, insight rank/seeds/ETA, encode vars/clauses.
	TypeDelta = "delta"
	// TypeDIP is one DIP-loop iteration: trial, iteration, DIP and
	// response bits, solve time, solver counters.
	TypeDIP = "dip"
	// TypeInsight is a seed-space tracker update (rank, seeds_log2,
	// eta_ms, …; see internal/insight).
	TypeInsight = "insight"
	// TypeSpan is a completed attack stage (trace span_end): name,
	// duration, counters.
	TypeSpan = "span"
	// TypeResult is a terminal summary. data.scope distinguishes a
	// per-trial result ("trial") from the experiment-terminal one
	// ("experiment") that ends a `runs watch` session.
	TypeResult = "result"
	// TypeStage is the anatomy breakdown published at each DIP boundary:
	// trial, iteration, cumulative solve_ms, per-iteration difficulty,
	// sampled mean LBD, restarts, and XOR propagation share (see
	// internal/anatomy).
	TypeStage = "stage"
	// TypeJob is a daemon job lifecycle transition (internal/daemon):
	// data carries the job id, the new state
	// (queued/admitted/running/draining/done/failed/evicted), and
	// state-specific fields (queue position, worker, error, bundle dir).
	TypeJob = "job"
)

// Proto is the stream schema version carried in hello events. Bump it
// when the event envelope or the meaning of a type changes.
const Proto = 1

// Event is one feed entry. Seq is the bus-assigned ordering (0 on
// per-subscriber synthesized events, which carry no SSE id line and so
// never disturb a client's Last-Event-ID); Data is type-specific. Job
// tags the envelope with the daemon job that published it (empty for
// single-attack CLIs and daemon-global events): the /events?job=<id>
// filter and per-job `runs watch -job` both select on it.
type Event struct {
	Seq  uint64         `json:"seq,omitempty"`
	Type string         `json:"type"`
	Job  string         `json:"job,omitempty"`
	Time time.Time      `json:"t"`
	Data map[string]any `json:"data,omitempty"`
}

// Ring and per-subscriber buffer capacities. The resume ring is sized
// for a reconnect window of several delta periods plus the DIP burst
// rate of the fastest benchmarks; the subscriber buffer only has to
// cover one slow write, not a disconnect.
const (
	DefaultRingSize         = 1024
	DefaultSubscriberBuffer = 256
)

// Bus is a handle on the fan-out hub. The zero value is not usable;
// construct with NewBus. All methods are safe for concurrent use, and
// Enabled/Publish are additionally nil-safe so instrumentation points
// never branch on the bus's presence.
//
// A Bus is a thin view over a shared core: WithJob derives a second
// handle on the same subscribers and resume ring whose published events
// carry a job tag. Handles share sequence numbering, so aggregate
// consumers see one strictly increasing stream interleaving every job.
type Bus struct {
	core *busCore
	job  string
}

// busCore holds the state shared by every Bus view: the resume ring,
// subscriber set, and sequence counter.
type busCore struct {
	ringCap int
	subCap  int

	// subscribers is the attached-subscriber count, readable without the
	// mutex: the Publish fast path is one atomic load when nobody
	// listens.
	subscribers atomic.Int32
	// lastSeq mirrors seq for lock-free LastSeq reads.
	lastSeq atomic.Uint64

	mu     sync.Mutex
	seq    uint64
	ring   []Event // resume ring, oldest at head
	head   int
	subs   map[*Subscriber]struct{}
	closed bool
}

// NewBus returns a bus with the default ring and subscriber-buffer
// capacities.
func NewBus() *Bus { return NewBusSized(DefaultRingSize, DefaultSubscriberBuffer) }

// NewBusSized returns a bus with explicit capacities (values < 1 select
// the defaults). Small capacities are how the drop-oldest tests force
// overflow deterministically.
func NewBusSized(ringCap, subCap int) *Bus {
	if ringCap < 1 {
		ringCap = DefaultRingSize
	}
	if subCap < 1 {
		subCap = DefaultSubscriberBuffer
	}
	return &Bus{core: &busCore{ringCap: ringCap, subCap: subCap, subs: make(map[*Subscriber]struct{})}}
}

// WithJob returns a view of the same bus whose published events are
// tagged with job id. Subscribers, the resume ring, and sequence
// numbering are shared with the parent; only the Job field of events
// published through the returned handle differs. An empty id (or a nil
// receiver) returns the receiver unchanged.
func (b *Bus) WithJob(id string) *Bus {
	if b == nil || id == "" || id == b.job {
		return b
	}
	return &Bus{core: b.core, job: id}
}

// Job returns the job tag events published through this handle carry
// (empty for the root handle). Nil-safe.
func (b *Bus) Job() string {
	if b == nil {
		return ""
	}
	return b.job
}

// Enabled reports whether at least one subscriber is attached. Nil-safe
// and lock-free: publishers call it before building an event payload so
// the no-subscriber path allocates nothing.
func (b *Bus) Enabled() bool {
	return b != nil && b.core.subscribers.Load() > 0
}

// LastSeq returns the most recently assigned sequence number (0 before
// the first published event). Nil-safe.
func (b *Bus) LastSeq() uint64 {
	if b == nil {
		return 0
	}
	return b.core.lastSeq.Load()
}

// Publish assigns the next sequence number to a typ event carrying data
// and fans it out to every subscriber, retaining it in the resume ring.
// With no subscribers attached (or a nil/closed bus) the event is
// discarded without a sequence number. The data map is retained by the
// ring and subscriber buffers; callers must not mutate it afterwards.
// Publish never blocks on a slow subscriber.
func (b *Bus) Publish(typ string, data map[string]any) {
	if !b.Enabled() {
		return
	}
	now := time.Now()
	c := b.core
	c.mu.Lock()
	if c.closed || len(c.subs) == 0 {
		c.mu.Unlock()
		return
	}
	c.seq++
	ev := Event{Seq: c.seq, Type: typ, Job: b.job, Time: now, Data: data}
	if len(c.ring) < c.ringCap {
		c.ring = append(c.ring, ev)
	} else {
		c.ring[c.head] = ev
		c.head = (c.head + 1) % c.ringCap
	}
	for s := range c.subs {
		s.push(ev)
	}
	c.lastSeq.Store(c.seq)
	c.mu.Unlock()
}

// Subscribe attaches a new subscriber. A nonzero lastEventID requests a
// resume: every retained event with Seq > lastEventID is replayed into
// the subscriber's buffer before live delivery begins. If the requested
// position has already been evicted from the ring, the subscriber's Gap
// flag is set and delivery starts from the oldest retained event.
// Subscribing to a closed bus returns an already-closed subscriber.
func (b *Bus) Subscribe(lastEventID uint64) *Subscriber {
	c := b.core
	s := &Subscriber{bus: c, cap: c.subCap, notify: make(chan struct{}, 1)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		s.closed = true
		return s
	}
	if lastEventID < c.seq {
		n := len(c.ring)
		if n > 0 {
			oldest := c.ring[c.head%n].Seq
			if lastEventID+1 < oldest {
				s.gap = true
			}
			for i := 0; i < n; i++ {
				ev := c.ring[(c.head+i)%n]
				if ev.Seq > lastEventID {
					s.push(ev)
				}
			}
		}
	}
	c.subs[s] = struct{}{}
	c.subscribers.Add(1)
	return s
}

// Close shuts the bus down: every subscriber is closed (draining its
// buffered events first) and later Publish calls are discarded. Closing
// any view closes the shared core, so every other view stops too.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	c := b.core
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	subs := make([]*Subscriber, 0, len(c.subs))
	for s := range c.subs {
		subs = append(subs, s)
	}
	c.subs = map[*Subscriber]struct{}{}
	c.subscribers.Store(0)
	c.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

// detach removes s from the live set (idempotent).
func (c *busCore) detach(s *Subscriber) {
	c.mu.Lock()
	if _, ok := c.subs[s]; ok {
		delete(c.subs, s)
		c.subscribers.Add(-1)
	}
	c.mu.Unlock()
}

// Subscriber is one attached client. Events are buffered in a private
// drop-oldest ring and consumed with Next; Close detaches from the bus.
// A Subscriber is safe for one consuming goroutine concurrent with the
// bus's publishers.
type Subscriber struct {
	bus    *busCore
	cap    int
	notify chan struct{}

	mu      sync.Mutex
	buf     []Event
	head, n int
	dropped uint64
	gap     bool
	closed  bool
}

// push appends ev, evicting the oldest buffered event when full.
func (s *Subscriber) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.buf == nil {
		s.buf = make([]Event, s.cap)
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// pop removes the oldest buffered event.
func (s *Subscriber) pop() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	ev := s.buf[s.head]
	s.buf[s.head] = Event{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Next returns the next buffered event, waiting until one arrives. ok is
// false once the subscriber is closed and its buffer drained, or when
// ctx is done. A positive timeout bounds the wait: when it elapses with
// no event, Next returns timedOut=true (and ok=false) so SSE handlers
// can emit keep-alive comments on idle streams; timeout <= 0 waits
// indefinitely.
func (s *Subscriber) Next(ctx context.Context, timeout time.Duration) (ev Event, ok, timedOut bool) {
	var timer *time.Timer
	var timeC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeC = timer.C
		defer timer.Stop()
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		if ev, got := s.pop(); got {
			return ev, true, false
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false, false
		}
		select {
		case <-s.notify:
		case <-done:
			return Event{}, false, false
		case <-timeC:
			return Event{}, false, true
		}
	}
}

// Dropped returns the exact number of events evicted from this
// subscriber's buffer because the client consumed too slowly.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Gap reports that the Last-Event-ID resume position had already been
// evicted from the bus's ring, so events were missed despite the resume.
func (s *Subscriber) Gap() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gap
}

// Close detaches the subscriber from the bus. Buffered events remain
// readable via Next until drained; afterwards Next reports ok=false.
// Idempotent and safe concurrent with the bus.
func (s *Subscriber) Close() {
	if s == nil {
		return
	}
	s.bus.detach(s)
	s.markClosed()
}

// markClosed flags the subscriber closed and wakes a blocked Next.
func (s *Subscriber) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
