package stream

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, s *Subscriber, n int) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out := make([]Event, 0, n)
	for len(out) < n {
		ev, ok, timedOut := s.Next(ctx, 0)
		if timedOut {
			t.Fatal("unexpected timeout")
		}
		if !ok {
			t.Fatalf("subscriber closed after %d of %d events", len(out), n)
		}
		out = append(out, ev)
	}
	return out
}

func TestPublishWithoutSubscribersIsDiscarded(t *testing.T) {
	b := NewBus()
	if b.Enabled() {
		t.Fatal("fresh bus reports enabled")
	}
	b.Publish(TypeDelta, map[string]any{"x": 1})
	if got := b.LastSeq(); got != 0 {
		t.Fatalf("LastSeq = %d after no-subscriber publish, want 0", got)
	}
	// Nil-safety: instrumentation points call these without branching.
	var nb *Bus
	if nb.Enabled() {
		t.Fatal("nil bus enabled")
	}
	if nb.LastSeq() != 0 {
		t.Fatal("nil bus LastSeq != 0")
	}
	nb.Publish(TypeDelta, nil)
	nb.Close()
	var ns *Subscriber
	ns.Close()
}

func TestOrderedDelivery(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	defer s.Close()
	for i := 0; i < 10; i++ {
		b.Publish(TypeDelta, map[string]any{"i": i})
	}
	evs := collect(t, s, 10)
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Type != TypeDelta {
			t.Fatalf("event %d has type %q", i, ev.Type)
		}
	}
	if b.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", b.LastSeq())
	}
}

func TestDropOldestCountsExactly(t *testing.T) {
	b := NewBusSized(64, 4)
	s := b.Subscribe(0)
	defer s.Close()
	for i := 0; i < 10; i++ {
		b.Publish(TypeDIP, map[string]any{"i": i})
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6 (10 published into a 4-slot buffer)", got)
	}
	evs := collect(t, s, 4)
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d (oldest dropped first)", i, ev.Seq, want)
		}
	}
}

func TestResumeFromLastEventID(t *testing.T) {
	b := NewBus()
	anchor := b.Subscribe(0) // keeps the bus enabled throughout
	defer anchor.Close()
	for i := 0; i < 20; i++ {
		b.Publish(TypeDelta, nil)
	}
	s := b.Subscribe(15)
	defer s.Close()
	evs := collect(t, s, 5)
	for i, ev := range evs {
		if want := uint64(16 + i); ev.Seq != want {
			t.Fatalf("resumed event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if s.Gap() {
		t.Fatal("gap flagged although the resume position was retained")
	}
	// Resuming from the current position replays nothing and goes live.
	live := b.Subscribe(20)
	defer live.Close()
	b.Publish(TypeResult, nil)
	evs = collect(t, live, 1)
	if evs[0].Seq != 21 {
		t.Fatalf("live event seq = %d, want 21", evs[0].Seq)
	}
}

func TestResumeGapWhenRingEvicted(t *testing.T) {
	b := NewBusSized(8, 64)
	anchor := b.Subscribe(0)
	defer anchor.Close()
	for i := 0; i < 20; i++ {
		b.Publish(TypeDelta, nil)
	}
	// Ring retains 13..20; a client that last saw 5 has a gap.
	s := b.Subscribe(5)
	defer s.Close()
	if !s.Gap() {
		t.Fatal("gap not flagged for an evicted resume position")
	}
	evs := collect(t, s, 8)
	if evs[0].Seq != 13 || evs[7].Seq != 20 {
		t.Fatalf("gap resume delivered seq %d..%d, want 13..20", evs[0].Seq, evs[7].Seq)
	}
}

func TestNextTimeoutSignalsKeepAlive(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	defer s.Close()
	_, ok, timedOut := s.Next(context.Background(), 10*time.Millisecond)
	if ok || !timedOut {
		t.Fatalf("Next on idle stream: ok=%v timedOut=%v, want false/true", ok, timedOut)
	}
}

func TestCloseDrainsThenEnds(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	b.Publish(TypeDelta, nil)
	b.Publish(TypeResult, nil)
	b.Close()
	evs := collect(t, s, 2)
	if evs[1].Type != TypeResult {
		t.Fatalf("last drained event is %q, want result", evs[1].Type)
	}
	if _, ok, _ := s.Next(context.Background(), 0); ok {
		t.Fatal("Next returned an event after drain of a closed subscriber")
	}
	// Publishing after Close is a silent no-op.
	b.Publish(TypeDelta, nil)
	if b.LastSeq() != 2 {
		t.Fatalf("LastSeq moved after Close: %d", b.LastSeq())
	}
	if b.Subscribe(0); b.Enabled() {
		t.Fatal("Subscribe on a closed bus re-enabled it")
	}
}

func TestConcurrentPublishSubscribeUnsubscribe(t *testing.T) {
	b := NewBusSized(128, 32)
	stopPub := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopPub:
					return
				default:
				}
				b.Publish(TypeDelta, map[string]any{"pub": p, "i": i})
			}
		}(p)
	}
	var subWG sync.WaitGroup
	for c := 0; c < 8; c++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for r := 0; r < 20; r++ {
				s := b.Subscribe(0)
				var last uint64
				for n := 0; n < 10; n++ {
					ev, ok, timedOut := s.Next(context.Background(), 50*time.Millisecond)
					if !ok || timedOut {
						break
					}
					if ev.Seq <= last {
						t.Errorf("out-of-order delivery: seq %d after %d", ev.Seq, last)
						break
					}
					last = ev.Seq
				}
				s.Close()
			}
		}()
	}
	subWG.Wait()
	close(stopPub)
	wg.Wait()
	b.Close()
}

func TestSubscriberCloseWakesBlockedNext(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	done := make(chan struct{})
	go func() {
		s.Next(context.Background(), 0)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on Close")
	}
}

func TestPublishedDataIsNotCopiedButSeqIsStable(t *testing.T) {
	// Documented contract: the data map is retained; publishers hand it
	// off. Verify the ring serves the same map to a resuming client.
	b := NewBus()
	anchor := b.Subscribe(0)
	defer anchor.Close()
	m := map[string]any{"k": "v"}
	b.Publish(TypeInsight, m)
	s := b.Subscribe(0)
	defer s.Close()
	evs := collect(t, s, 1)
	if fmt.Sprint(evs[0].Data) != fmt.Sprint(m) {
		t.Fatalf("resumed event data %v, want %v", evs[0].Data, m)
	}
}

func TestResumeRingWraparoundAccounting(t *testing.T) {
	// Regression: a subscriber resuming from a Last-Event-ID older than
	// the ring must (a) be flagged Gap so the SSE layer re-sends a fresh
	// snapshot, (b) receive exactly the retained suffix in order, and
	// (c) account every replay eviction in Dropped. Ring 8, subscriber
	// buffer 4: publish 20 events so the ring wraps (holds 13..20), then
	// resume from seq 2 — the 8 retained events overflow the 4-slot
	// buffer, evicting 13..16.
	b := NewBusSized(8, 4)
	anchor := b.Subscribe(0)
	defer anchor.Close()
	for i := 1; i <= 20; i++ {
		b.Publish(TypeDelta, map[string]any{"i": i})
	}
	s := b.Subscribe(2)
	defer s.Close()
	if !s.Gap() {
		t.Fatal("resume older than the ring did not set Gap")
	}
	if got := s.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d after replay overflow, want exactly 4", got)
	}
	evs := collect(t, s, 4)
	for i, ev := range evs {
		if want := uint64(17 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
	}
	// Live delivery continues with no further loss and exact accounting.
	b.Publish(TypeDelta, map[string]any{"i": 21})
	evs = collect(t, s, 1)
	if evs[0].Seq != 21 {
		t.Fatalf("live event seq %d, want 21", evs[0].Seq)
	}
	if got := s.Dropped(); got != 4 {
		t.Fatalf("Dropped drifted to %d after live delivery, want 4", got)
	}
}

func TestResumeWithinRingExactNoGap(t *testing.T) {
	// Complement to the wraparound case: a resume position still inside
	// the ring replays the exact suffix with no gap and no drops.
	b := NewBusSized(8, 8)
	anchor := b.Subscribe(0)
	defer anchor.Close()
	for i := 1; i <= 10; i++ {
		b.Publish(TypeDelta, map[string]any{"i": i})
	}
	s := b.Subscribe(6) // ring holds 3..10; 6+1 >= oldest 3
	defer s.Close()
	if s.Gap() {
		t.Fatal("in-ring resume flagged Gap")
	}
	if got := s.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d on in-ring resume, want 0", got)
	}
	evs := collect(t, s, 4)
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestWithJobTagsEnvelopes(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(0)
	defer s.Close()
	j1 := b.WithJob("job-1")
	j2 := b.WithJob("job-2")
	b.Publish(TypeDelta, nil)
	j1.Publish(TypeDIP, nil)
	j2.Publish(TypeDIP, nil)
	j1.Publish(TypeResult, nil)
	evs := collect(t, s, 4)
	wantJobs := []string{"", "job-1", "job-2", "job-1"}
	for i, ev := range evs {
		if ev.Job != wantJobs[i] {
			t.Fatalf("event %d: job %q, want %q", i, ev.Job, wantJobs[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d, want %d — views must share numbering", i, ev.Seq, i+1)
		}
	}
	// Views share subscribers and closed state.
	if !j1.Enabled() || j1.LastSeq() != 4 {
		t.Fatalf("view state diverged: enabled=%v lastSeq=%d", j1.Enabled(), j1.LastSeq())
	}
	if got := b.WithJob("").Job(); got != "" {
		t.Fatalf("WithJob(\"\") job = %q, want root handle", got)
	}
	if got := j1.WithJob("job-1"); got != j1 {
		t.Fatal("WithJob with same id should return the receiver")
	}
	var nb *Bus
	if nb.WithJob("x") != nil || nb.Job() != "" {
		t.Fatal("nil bus WithJob/Job not nil-safe")
	}
	j2.Close()
	if b.Enabled() {
		t.Fatal("closing a view did not close the shared core")
	}
}
