// Package svgchart renders deterministic inline-SVG line charts. It is
// the chart core shared by internal/report (static HTML run reports) and
// the live dashboard served at /live by internal/metrics — extracted as
// a leaf package (stdlib only) so both can use one visual language
// without an import cycle (report depends on flight, which depends on
// metrics).
//
// Output is fully self-contained (no scripts, no external references)
// and deterministic: coordinates are formatted with fixed precision and
// series render in the order given, so identical inputs produce
// byte-identical markup — internal/report's byte-identical-render test
// rides on this property.
package svgchart

import (
	"fmt"
	"html"
	"strings"
)

// Palette cycles per-series stroke colors (a colorblind-tolerant ten-hue
// palette).
var Palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Series is one polyline on a chart, in data coordinates.
type Series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// Chart geometry (pixels). One fixed size keeps every chart in a report
// aligned and the markup reproducible.
const (
	Width        = 660
	Height       = 230
	MarginLeft   = 52 // y tick labels
	MarginRight  = 12
	MarginTop    = 26 // legend row
	MarginBottom = 34 // x tick labels + axis label
)

// MaxLegendEntries bounds the legend row; charts with more series state
// the overflow explicitly instead of dropping it silently.
const MaxLegendEntries = 8

// CSS is the style block the charts expect from their embedding page.
// Both internal/report's static HTML and the /live dashboard splice it
// verbatim, so the two renderings stay visually identical.
const CSS = `svg .grid{stroke:#e4e4e4;stroke-width:1}
svg .axis{stroke:#444;stroke-width:1}
svg .tick{font-size:10px;fill:#444}
svg .label{font-size:11px;fill:#222}
svg .line{fill:none;stroke-width:1.6}
svg .empty{font-size:12px;fill:#888;text-anchor:middle}`

// num formats a pixel coordinate with fixed precision (determinism).
func num(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// tickLabel formats a tick value ("%.2f" right-trimmed, matching the
// report package's number style).
func tickLabel(v float64) string {
	return num(v)
}

// Ticks returns up to n+1 evenly spaced tick values covering [lo, hi].
func Ticks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	step := (hi - lo) / float64(n)
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, lo+step*float64(i))
	}
	return out
}

// LineChart renders the series as one inline SVG element wrapped in a
// <figure class="chart">. yLabel names the vertical axis; xLabel the
// horizontal. An empty chart (no points at all) renders a placeholder
// message instead of axes.
func LineChart(caption, xLabel, yLabel string, ss []Series) string {
	var pts int
	xmin, xmax := 0.0, 1.0
	ymin, ymax := 0.0, 1.0
	first := true
	for _, s := range ss {
		for i := range s.X {
			if first {
				xmin, xmax = s.X[i], s.X[i]
				ymin, ymax = s.Y[i], s.Y[i]
				first = false
			}
			xmin, xmax = minf(xmin, s.X[i]), maxf(xmax, s.X[i])
			ymin, ymax = minf(ymin, s.Y[i]), maxf(ymax, s.Y[i])
			pts++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<figure class="chart"><figcaption>%s</figcaption>`, html.EscapeString(caption))
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		Width, Height, Width, Height)
	if pts == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="empty">no data</text>`, Width/2, Height/2)
		b.WriteString(`</svg></figure>`)
		return b.String()
	}
	// Counts and bit measures read best anchored at zero.
	if ymin > 0 {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	plotW := float64(Width - MarginLeft - MarginRight)
	plotH := float64(Height - MarginTop - MarginBottom)
	px := func(x float64) float64 { return float64(MarginLeft) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(MarginTop) + (1-(y-ymin)/(ymax-ymin))*plotH }

	// Gridlines and tick labels.
	for _, ty := range Ticks(ymin, ymax, 4) {
		y := py(ty)
		fmt.Fprintf(&b, `<line class="grid" x1="%d" y1="%s" x2="%d" y2="%s"/>`,
			MarginLeft, num(y), Width-MarginRight, num(y))
		fmt.Fprintf(&b, `<text class="tick" x="%d" y="%s" text-anchor="end">%s</text>`,
			MarginLeft-5, num(y+3.5), html.EscapeString(tickLabel(ty)))
	}
	for _, tx := range Ticks(xmin, xmax, 6) {
		x := px(tx)
		fmt.Fprintf(&b, `<text class="tick" x="%s" y="%d" text-anchor="middle">%s</text>`,
			num(x), Height-MarginBottom+14, html.EscapeString(tickLabel(tx)))
	}
	// Axes.
	fmt.Fprintf(&b, `<line class="axis" x1="%d" y1="%d" x2="%d" y2="%d"/>`,
		MarginLeft, MarginTop, MarginLeft, Height-MarginBottom)
	fmt.Fprintf(&b, `<line class="axis" x1="%d" y1="%d" x2="%d" y2="%d"/>`,
		MarginLeft, Height-MarginBottom, Width-MarginRight, Height-MarginBottom)
	fmt.Fprintf(&b, `<text class="label" x="%d" y="%d" text-anchor="middle">%s</text>`,
		MarginLeft+int(plotW/2), Height-4, html.EscapeString(xLabel))
	fmt.Fprintf(&b, `<text class="label" x="12" y="%d" text-anchor="middle" transform="rotate(-90 12 %d)">%s</text>`,
		MarginTop+int(plotH/2), MarginTop+int(plotH/2), html.EscapeString(yLabel))

	// Series polylines (single points render as a circle marker).
	for si, s := range ss {
		color := Palette[si%len(Palette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="5 3"`
		}
		if len(s.X) == 1 {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`,
				num(px(s.X[0])), num(py(s.Y[0])), color)
			continue
		}
		coords := make([]string, len(s.X))
		for i := range s.X {
			coords[i] = num(px(s.X[i])) + "," + num(py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline class="line" points="%s" stroke="%s"%s/>`,
			strings.Join(coords, " "), color, dash)
	}
	// Legend row along the top margin.
	lx := MarginLeft
	for si, s := range ss {
		if si == MaxLegendEntries {
			fmt.Fprintf(&b, `<text class="tick" x="%d" y="%d">+%d more</text>`,
				lx, MarginTop-10, len(ss)-MaxLegendEntries)
			break
		}
		color := Palette[si%len(Palette)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, MarginTop-14, lx+14, MarginTop-14, color)
		fmt.Fprintf(&b, `<text class="tick" x="%d" y="%d">%s</text>`,
			lx+18, MarginTop-10, html.EscapeString(s.Name))
		lx += 22 + 7*len(s.Name)
	}
	b.WriteString(`</svg></figure>`)
	return b.String()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
