package svgchart

import (
	"strings"
	"testing"
)

func TestLineChartDeterministic(t *testing.T) {
	ss := []Series{
		{Name: "rank", X: []float64{0, 1, 2, 3}, Y: []float64{0, 2, 5, 8}},
		{Name: "bound", X: []float64{0, 3}, Y: []float64{8, 8}, Dashed: true},
	}
	a := LineChart("convergence", "DIP", "rank", ss)
	b := LineChart("convergence", "DIP", "rank", ss)
	if a != b {
		t.Fatal("identical inputs rendered differently")
	}
	for _, want := range []string{"<figure class=\"chart\">", "convergence", "polyline", "stroke-dasharray"} {
		if !strings.Contains(a, want) {
			t.Fatalf("chart missing %q", want)
		}
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("c", "x", "y", nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart missing placeholder: %s", out)
	}
}

func TestLineChartLegendOverflow(t *testing.T) {
	var ss []Series
	for i := 0; i < MaxLegendEntries+3; i++ {
		ss = append(ss, Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	}
	out := LineChart("c", "x", "y", ss)
	if !strings.Contains(out, "+3 more") {
		t.Fatal("legend overflow not stated")
	}
}

func TestTicksCoverRange(t *testing.T) {
	ts := Ticks(0, 10, 4)
	if len(ts) != 5 || ts[0] != 0 || ts[4] != 10 {
		t.Fatalf("Ticks(0,10,4) = %v", ts)
	}
	// Degenerate range still yields usable ticks.
	ts = Ticks(5, 5, 4)
	if len(ts) != 5 || ts[0] != 5 {
		t.Fatalf("Ticks(5,5,4) = %v", ts)
	}
}
