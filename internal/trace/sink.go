package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// TextSink renders events as human-readable lines on w, one per event,
// prefixed with "trace:". Safe for concurrent use.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink.
func (s *TextSink) Emit(ev Event) {
	var sb strings.Builder
	sb.WriteString("trace: ")
	sb.WriteString(ev.Type)
	if ev.Span != "" {
		sb.WriteByte(' ')
		sb.WriteString(ev.Span)
	}
	if ev.Type == "span_end" {
		sb.WriteByte(' ')
		sb.WriteString(ev.Duration.Round(time.Microsecond).String())
	}
	for _, k := range sortedKeys(ev.Counters) {
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(uitoa(ev.Counters[k]))
	}
	for _, k := range sortedFieldKeys(ev.Fields) {
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		b, _ := json.Marshal(ev.Fields[k])
		sb.Write(b)
	}
	if ev.Msg != "" {
		sb.WriteByte(' ')
		sb.WriteString(ev.Msg)
	}
	sb.WriteByte('\n')
	s.mu.Lock()
	io.WriteString(s.w, sb.String())
	s.mu.Unlock()
}

// JSONLSink writes one JSON object per event to w (JSON Lines). The
// schema, stable for downstream tooling:
//
//	{
//	  "ev":       "span_start" | "span_end" | "progress" | "snapshot" | "result" | "experiment",
//	  "t":        RFC3339Nano wall-clock timestamp,
//	  "span":     stage name (span events only),
//	  "dur_ms":   span duration in milliseconds (span_end only),
//	  "counters": {name: uint64, ...} (span_end only, omitted when empty),
//	  "msg":      progress text (progress only),
//	  "fields":   {name: value, ...} (snapshot/result/experiment only)
//	}
//
// Safe for concurrent use; every event is written as one atomic line.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

type jsonEvent struct {
	Ev       string            `json:"ev"`
	T        string            `json:"t"`
	Span     string            `json:"span,omitempty"`
	DurMS    float64           `json:"dur_ms,omitempty"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	Msg      string            `json:"msg,omitempty"`
	Fields   map[string]any    `json:"fields,omitempty"`
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	je := jsonEvent{
		Ev:       ev.Type,
		T:        ev.Time.Format(time.RFC3339Nano),
		Span:     ev.Span,
		Counters: ev.Counters,
		Msg:      ev.Msg,
		Fields:   ev.Fields,
	}
	if ev.Type == "span_end" {
		je.DurMS = float64(ev.Duration) / float64(time.Millisecond)
	}
	b, err := json.Marshal(je)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	s.w.Write(b)
	s.mu.Unlock()
}

// SpanRecord is one completed span as retained by a Collector.
type SpanRecord struct {
	Name     string
	Duration time.Duration
	Counters map[string]uint64
}

// Collector retains completed spans and terminal events in memory, in
// emission order. CLIs use it to render per-stage timing tables after a
// run; tests use it to assert on the span stream.
type Collector struct {
	mu     sync.Mutex
	spans  []SpanRecord
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	if ev.Type == "span_end" {
		c.spans = append(c.spans, SpanRecord{Name: ev.Span, Duration: ev.Duration, Counters: ev.Counters})
	}
}

// Spans returns the completed spans in emission order.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanRecord(nil), c.spans...)
}

// Events returns every event received, in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// MultiSink fans every event out to several sinks.
type MultiSink []Sink

// Multi combines sinks, dropping nils; it returns nil when none remain.
func Multi(sinks ...Sink) Sink {
	var ms MultiSink
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return ms[0]
	}
	return ms
}

// Emit implements Sink.
func (ms MultiSink) Emit(ev Event) {
	for _, s := range ms {
		s.Emit(ev)
	}
}

func sortedKeys(m map[string]uint64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFieldKeys(m map[string]any) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
