package trace

import (
	"time"

	"dynunlock/internal/stream"
)

// NewStreamSink bridges the trace event feed onto a live stream bus,
// mapping trace event types to the stream taxonomy:
//
//	span_end   → stream "span"   {span, dur_ms, counters?}
//	insight    → stream "insight" (fields verbatim)
//	result     → stream "result" with data.scope = "trial"
//	experiment → stream "result" with data.scope = "experiment"
//	            (the terminal event a `runs watch` session exits 0 on)
//
// span_start and progress events are dropped (span_end carries the
// duration; progress text has no structured payload), and "snapshot"
// events are dropped too: metrics.Progress publishes its periodic sample
// directly to the bus as a "delta" event (Progress.AttachStream), so
// forwarding the trace copy would double-deliver it.
//
// Returns nil for a nil bus, which trace.Multi drops — CLIs append it
// unconditionally. The sink checks bus.Enabled() before building any
// payload, preserving the no-subscriber zero-allocation path.
func NewStreamSink(b *stream.Bus) Sink {
	if b == nil {
		return nil
	}
	return &streamSink{bus: b}
}

type streamSink struct {
	bus *stream.Bus
}

// Emit implements Sink.
func (s *streamSink) Emit(ev Event) {
	if !s.bus.Enabled() {
		return
	}
	switch ev.Type {
	case "span_end":
		data := map[string]any{
			"span":   ev.Span,
			"dur_ms": float64(ev.Duration) / float64(time.Millisecond),
		}
		if len(ev.Counters) > 0 {
			counters := make(map[string]any, len(ev.Counters))
			for k, v := range ev.Counters {
				counters[k] = v
			}
			data["counters"] = counters
		}
		s.bus.Publish(stream.TypeSpan, data)
	case "insight":
		s.bus.Publish(stream.TypeInsight, ev.Fields)
	case "result":
		s.bus.Publish(stream.TypeResult, withScope(ev.Fields, "trial"))
	case "experiment":
		s.bus.Publish(stream.TypeResult, withScope(ev.Fields, "experiment"))
	}
}

// withScope copies fields and adds the scope marker; the source map is
// shared with the other sinks in a Multi fan-out, so it must not be
// mutated here.
func withScope(fields map[string]any, scope string) map[string]any {
	data := make(map[string]any, len(fields)+1)
	for k, v := range fields {
		data[k] = v
	}
	data["scope"] = scope
	return data
}
