package trace

import (
	"context"
	"testing"
	"time"

	"dynunlock/internal/stream"
)

func drain(t *testing.T, sub *stream.Subscriber, n int) []stream.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out := make([]stream.Event, 0, n)
	for len(out) < n {
		ev, ok, timedOut := sub.Next(ctx, 0)
		if !ok || timedOut {
			t.Fatalf("stream ended after %d of %d events", len(out), n)
		}
		out = append(out, ev)
	}
	return out
}

func TestStreamSinkMapsEventTypes(t *testing.T) {
	bus := stream.NewBus()
	sub := bus.Subscribe(0)
	defer sub.Close()
	sink := NewStreamSink(bus)

	sink.Emit(Event{Type: "span_start", Span: "encode", Time: time.Now()})
	sink.Emit(Event{Type: "progress", Msg: "hi", Time: time.Now()})
	sink.Emit(Event{Type: "snapshot", Fields: map[string]any{"iterations": 1.0}, Time: time.Now()})
	sink.Emit(Event{
		Type: "span_end", Span: "encode", Time: time.Now(),
		Duration: 1500 * time.Microsecond,
		Counters: map[string]uint64{"encode_vars": 42},
	})
	sink.Emit(Event{Type: "insight", Fields: map[string]any{"rank": 3.0}, Time: time.Now()})
	trialFields := map[string]any{"iterations": 7}
	sink.Emit(Event{Type: "result", Fields: trialFields, Time: time.Now()})
	sink.Emit(Event{Type: "experiment", Fields: map[string]any{"succeeded": true}, Time: time.Now()})

	evs := drain(t, sub, 4)
	if evs[0].Type != stream.TypeSpan {
		t.Fatalf("event 0 = %q, want span (span_start/progress/snapshot dropped)", evs[0].Type)
	}
	if evs[0].Data["span"] != "encode" || evs[0].Data["dur_ms"] != 1.5 {
		t.Fatalf("span data = %v", evs[0].Data)
	}
	counters, ok := evs[0].Data["counters"].(map[string]any)
	if !ok || counters["encode_vars"] != uint64(42) {
		t.Fatalf("span counters = %v", evs[0].Data["counters"])
	}
	if evs[1].Type != stream.TypeInsight || evs[1].Data["rank"] != 3.0 {
		t.Fatalf("event 1 = %+v, want insight rank=3", evs[1])
	}
	if evs[2].Type != stream.TypeResult || evs[2].Data["scope"] != "trial" {
		t.Fatalf("event 2 = %+v, want trial-scoped result", evs[2])
	}
	if evs[3].Type != stream.TypeResult || evs[3].Data["scope"] != "experiment" {
		t.Fatalf("event 3 = %+v, want experiment-scoped result", evs[3])
	}
	// The shared fields map must not have been mutated by scope injection.
	if _, leaked := trialFields["scope"]; leaked {
		t.Fatal("withScope mutated the source fields map")
	}
}

func TestStreamSinkNilBusAndNoSubscribers(t *testing.T) {
	if NewStreamSink(nil) != nil {
		t.Fatal("nil bus should yield a nil sink (dropped by Multi)")
	}
	bus := stream.NewBus()
	sink := NewStreamSink(bus)
	sink.Emit(Event{Type: "experiment", Fields: map[string]any{"x": 1}})
	if bus.LastSeq() != 0 {
		t.Fatal("sink published with no subscribers attached")
	}
}
