// Package trace is the observability layer of the attack stack: named
// spans with wall-clock durations, monotonic counters (DIPs, oracle
// queries/cycles, SAT conflicts/decisions/propagations, learnt-clause
// stats), and free-form progress events, delivered to a pluggable Sink.
//
// The tracer rides on context.Context (With / From), so no public attack
// API grows a logger parameter: a layer that wants telemetry calls
// trace.From(ctx) and gets either the sink installed upstream or a no-op.
// The no-op path is allocation-free nil-receiver dispatch — a background
// context reproduces the untraced code paths bit for bit, which the
// determinism tests in internal/core enforce.
//
// Span names follow the paper's Fig. 3 stage structure: "unroll" (LFSR
// unroll + mask matrices + model netlist), "encode" (CNF encoding),
// "dip_loop", "extract", "enumerate", "refine" (seed-coset expansion),
// and "verify" (probe verification). Sinks are in sink.go; the JSONL
// schema is documented on JSONLSink and in DESIGN.md §3d.
package trace

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Event is one telemetry record. Type is one of:
//
//	"span_start"  a stage began (Span set)
//	"span_end"    a stage finished (Span, Duration, Counters set)
//	"progress"    a free-form progress line (Msg set)
//	"snapshot"    a periodic live-metrics sample (Fields set; see
//	              internal/metrics.Progress)
//	"result"      a terminal attack summary (Fields set)
//	"experiment"  a terminal multi-trial summary (Fields set)
type Event struct {
	Type     string
	Span     string
	Time     time.Time
	Duration time.Duration
	Counters map[string]uint64
	Msg      string
	Fields   map[string]any
}

// Sink receives telemetry events. Implementations must be safe for
// concurrent use: portfolio races and condition sweeps emit from several
// goroutines.
type Sink interface {
	Emit(ev Event)
}

type ctxKey struct{}

// With returns a context carrying the sink. Attack layers below retrieve
// it with From; a nil sink returns ctx unchanged.
func With(ctx context.Context, s Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Tracer{sink: s})
}

// From returns the tracer carried by ctx, or a no-op tracer (nil) when
// none is installed. All Tracer and Span methods are nil-safe, so callers
// never branch on the result.
func From(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	if t, ok := ctx.Value(ctxKey{}).(*Tracer); ok {
		return t
	}
	return nil
}

// Tracer emits events to its sink. The nil tracer is the no-op
// implementation used when a context carries no sink.
type Tracer struct {
	sink Sink
}

// New returns a tracer emitting to s (nil s gives the no-op tracer).
// Most callers use With/From instead; New exists for tests and CLIs that
// hold a tracer directly.
func New(s Sink) *Tracer {
	if s == nil {
		return nil
	}
	return &Tracer{sink: s}
}

// Enabled reports whether events reach a real sink.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Sink returns the tracer's sink (nil for the no-op tracer). Callers use
// it to layer an extra sink over an inherited context with Multi without
// losing the one already installed.
func (t *Tracer) Sink() Sink {
	if t == nil {
		return nil
	}
	return t.sink
}

// Start begins a span. End must be called to emit the closing event;
// counters added in between travel on the span_end event.
func (t *Tracer) Start(name string) *Span {
	if !t.Enabled() {
		return nil
	}
	now := time.Now()
	t.sink.Emit(Event{Type: "span_start", Span: name, Time: now})
	return &Span{tr: t, name: name, start: now}
}

// Progressf emits a formatted progress event.
func (t *Tracer) Progressf(format string, args ...any) {
	if !t.Enabled() {
		return
	}
	t.sink.Emit(Event{Type: "progress", Time: time.Now(), Msg: fmt.Sprintf(format, args...)})
}

// Emit sends a fully formed event (used for "result"/"experiment"
// summaries). A zero Time is stamped with the current time.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled() {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	t.sink.Emit(ev)
}

// Span is an in-flight stage. The nil span (from a no-op tracer) accepts
// all method calls and does nothing.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time

	mu       sync.Mutex
	counters map[string]uint64
	ended    bool
}

// Add increments a monotonic counter attached to the span.
func (sp *Span) Add(name string, delta uint64) {
	if sp == nil || delta == 0 {
		return
	}
	sp.mu.Lock()
	if sp.counters == nil {
		sp.counters = make(map[string]uint64)
	}
	sp.counters[name] += delta
	sp.mu.Unlock()
}

// End emits the span_end event with the span's duration and counters.
// End is idempotent; only the first call emits.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	counters := sp.counters
	sp.counters = nil
	sp.mu.Unlock()
	now := time.Now()
	sp.tr.sink.Emit(Event{
		Type:     "span_end",
		Span:     sp.name,
		Time:     now,
		Duration: now.Sub(sp.start),
		Counters: counters,
	})
}
