package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNopTracerIsSafe(t *testing.T) {
	tr := From(context.Background())
	if tr.Enabled() {
		t.Fatal("background context must carry no sink")
	}
	sp := tr.Start("dip_loop")
	sp.Add("dips", 3)
	sp.End()
	sp.End() // idempotent
	tr.Progressf("iter %d", 1)
	tr.Emit(Event{Type: "result"})
	if From(nil).Enabled() {
		t.Fatal("nil context must yield the nop tracer")
	}
}

func TestWithFromRoundTrip(t *testing.T) {
	c := NewCollector()
	ctx := With(context.Background(), c)
	tr := From(ctx)
	if !tr.Enabled() {
		t.Fatal("sink not carried")
	}
	sp := tr.Start("encode")
	sp.Add("clauses", 10)
	sp.Add("clauses", 5)
	sp.End()
	tr.Progressf("hello %s", "world")
	tr.Emit(Event{Type: "result", Fields: map[string]any{"stopped": false}})

	spans := c.Spans()
	if len(spans) != 1 || spans[0].Name != "encode" || spans[0].Counters["clauses"] != 15 {
		t.Fatalf("spans = %+v", spans)
	}
	evs := c.Events()
	if len(evs) != 4 { // span_start, span_end, progress, result
		t.Fatalf("got %d events", len(evs))
	}
	if evs[2].Msg != "hello world" {
		t.Fatalf("progress msg = %q", evs[2].Msg)
	}
	if evs[3].Time.IsZero() {
		t.Fatal("Emit must stamp zero times")
	}
}

func TestWithNilSinkReturnsSameContext(t *testing.T) {
	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Fatal("nil sink must not wrap the context")
	}
}

func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	sp := tr.Start("dip_loop")
	sp.Add("dips", 7)
	sp.End()
	tr.Progressf("iter 1")
	tr.Emit(Event{Type: "result", Fields: map[string]any{"stopped": true, "reason": "deadline"}})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var evs []map[string]any
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", i, err, ln)
		}
		if m["ev"] == "" || m["t"] == "" {
			t.Fatalf("line %d missing ev/t: %v", i, m)
		}
		evs = append(evs, m)
	}
	if evs[0]["ev"] != "span_start" || evs[0]["span"] != "dip_loop" {
		t.Fatalf("first event = %v", evs[0])
	}
	end := evs[1]
	if end["ev"] != "span_end" {
		t.Fatalf("second event = %v", end)
	}
	if _, ok := end["dur_ms"].(float64); !ok {
		t.Fatalf("span_end missing dur_ms: %v", end)
	}
	counters, ok := end["counters"].(map[string]any)
	if !ok || counters["dips"] != float64(7) {
		t.Fatalf("span_end counters = %v", end["counters"])
	}
	fields, ok := evs[3]["fields"].(map[string]any)
	if !ok || fields["stopped"] != true || fields["reason"] != "deadline" {
		t.Fatalf("result fields = %v", evs[3]["fields"])
	}
}

func TestTextSinkLines(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewTextSink(&buf))
	sp := tr.Start("extract")
	sp.Add("conflicts", 2)
	sp.End()
	tr.Progressf("note")
	out := buf.String()
	if !strings.Contains(out, "span_end extract") || !strings.Contains(out, "conflicts=2") {
		t.Fatalf("text output = %q", out)
	}
	if !strings.Contains(out, "progress note") {
		t.Fatalf("text output = %q", out)
	}
}

func TestMultiSink(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Fatal("all-nil Multi must be nil")
	}
	a, b := NewCollector(), NewCollector()
	if Multi(a) != Sink(a) {
		t.Fatal("single sink must pass through")
	}
	tr := New(Multi(a, nil, b))
	tr.Progressf("x")
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("event not fanned out")
	}
}

// Sinks and spans must be race-clean: portfolio goroutines emit
// concurrently into one sink.
func TestConcurrentEmit(t *testing.T) {
	c := NewCollector()
	var jbuf, tbuf bytes.Buffer
	tr := New(Multi(c, NewJSONLSink(&jbuf), NewTextSink(&tbuf)))
	sp := tr.Start("dip_loop")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp.Add("conflicts", 1)
				tr.Progressf("g")
			}
		}()
	}
	wg.Wait()
	sp.End()
	spans := c.Spans()
	if len(spans) != 1 || spans[0].Counters["conflicts"] != 800 {
		t.Fatalf("spans = %+v", spans)
	}
}

// TestConcurrentSpanEmissionJSONL is the regression test for the JSONL
// sink under portfolio-style concurrency: many goroutines each opening,
// annotating, and closing their own spans against one shared sink. Run
// under -race (CI does) it catches any lost synchronization; the JSON
// decode below catches interleaved partial lines.
func TestConcurrentSpanEmissionJSONL(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector()
	tr := New(Multi(NewJSONLSink(&buf), col))
	const goroutines, spansPer = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := tr.Start("dip_loop")
				sp.Add("conflicts", uint64(g))
				tr.Progressf("worker %d iter %d", g, i)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(col.Spans()); got != goroutines*spansPer {
		t.Fatalf("collector saw %d spans, want %d", got, goroutines*spansPer)
	}
	// Every line must be a complete, standalone JSON object: torn writes
	// from unsynchronized goroutines would corrupt the stream.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantLines := goroutines * spansPer * 3 // span_start + progress + span_end
	if len(lines) != wantLines {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), wantLines)
	}
	counts := map[string]int{}
	for i, line := range lines {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", i, err, line)
		}
		counts[ev.Ev]++
	}
	for _, typ := range []string{"span_start", "span_end", "progress"} {
		if counts[typ] != goroutines*spansPer {
			t.Fatalf("event counts %v, want %d of each", counts, goroutines*spansPer)
		}
	}
}
