package dynunlock

import (
	"sort"
	"strings"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/insight"
	"dynunlock/internal/lock"
	"dynunlock/internal/netlist"
	"dynunlock/internal/satattack"
)

// sortedSeedSet renders a candidate set as sorted bit strings so two
// enumerations compare as sets, independent of discovery order.
func sortedSeedSet(seeds []gf2.Vec) []string {
	out := make([]string, len(seeds))
	for i, s := range seeds {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}

// TestNativeXorMatchesCNFCandidates pins the native-XOR solver path to the
// pure-CNF reference on every committed benchmark configuration (the
// table2 bundle set: all ten Table II benchmarks at scale 16, 8-bit keys,
// per-cycle policy, seed base 100): the recovered candidate key set, exact
// to the element, must not depend on the encoding.
func TestNativeXorMatchesCNFCandidates(t *testing.T) {
	const (
		scale    = 16
		keyBits  = 8
		trials   = 2
		seedBase = 100
	)
	for _, e := range bench.Table2 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			design, err := LockBenchmark(e.Name, keyBits, PerCycle, scale)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < trials; trial++ {
				// Same per-trial secret derivation as RunExperimentCtx.
				rngSeed := int64(seedBase) + int64(trial)*7919 + 1
				run := func(nativeXor bool) *core.Result {
					chip, err := Fabricate(design, rngSeed)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Unlock(chip, core.Options{NativeXor: nativeXor})
					if err != nil {
						t.Fatal(err)
					}
					if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
						t.Fatalf("trial %d nativeXor=%v: secret seed not recovered", trial, nativeXor)
					}
					return res
				}
				cnf, xor := run(false), run(true)
				if cnf.Converged != xor.Converged || cnf.Exact != xor.Exact {
					t.Fatalf("trial %d: flags diverge: cnf converged=%v exact=%v, xor converged=%v exact=%v",
						trial, cnf.Converged, cnf.Exact, xor.Converged, xor.Exact)
				}
				a, b := sortedSeedSet(cnf.SeedCandidates), sortedSeedSet(xor.SeedCandidates)
				if len(a) != len(b) {
					t.Fatalf("trial %d: candidate count %d (cnf) != %d (xor)", trial, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("trial %d: candidate sets diverge at %d: %s != %s", trial, i, a[i], b[i])
					}
				}
				if xor.SolverStats.XorPropagations == 0 {
					t.Fatalf("trial %d: native-XOR run never exercised the GF(2) propagator", trial)
				}
			}
		})
	}
}

// affineBench is an XOR-only sequential core (mirrors the insight package's
// acceptance fixture): every response bit stays affine in the seed, so the
// tracker certifies all information each DIP reveals.
const affineBench = `
INPUT(p0)
INPUT(p1)
OUTPUT(o0)
OUTPUT(o1)
f0 = DFF(n0)
f1 = DFF(n1)
f2 = DFF(n2)
f3 = DFF(n3)
f4 = DFF(n4)
f5 = DFF(n5)
n0 = XOR(f1, p0)
n1 = XNOR(f2, f0)
n2 = XOR(f3, p1)
n3 = XOR(f4, f1)
n4 = NOT(f5)
n5 = XOR(f0, f2)
o0 = XOR(f0, f3)
o1 = XNOR(f2, f5)
`

// TestAnalyticShortCircuitAffineCore is the fast-path acceptance test: on a
// fully affine core the insight feedback loop reaches full key rank and the
// attack terminates analytically — the key drops out of GF(2)
// back-substitution with no further SAT iterations — in both the mask-space
// (linear) and seed-space (direct) formulations, recovering exactly the
// candidate set the SAT-only attack finds.
func TestAnalyticShortCircuitAffineCore(t *testing.T) {
	n, err := netlist.ParseBench(strings.NewReader(affineBench), "affine")
	if err != nil {
		t.Fatal(err)
	}
	// 4-bit key: rank[A;B] = 4 = k on this fixture, so the certified
	// constraints can pin the full seed and the direct-mode short-circuit
	// (which needs full seed rank, not just determined masks) can fire.
	design, err := lock.Lock(n, lock.Config{KeyBits: 4, Policy: PerCycle})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeLinear, ModeDirect} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			run := func(analytic bool) *core.Result {
				chip, err := Fabricate(design, 7)
				if err != nil {
					t.Fatal(err)
				}
				opts := core.Options{Mode: mode, NativeXor: true}
				if analytic {
					tk, err := insight.New(design, insight.Options{})
					if err != nil {
						t.Fatal(err)
					}
					opts.OnDIP = satattack.ChainObservers(opts.OnDIP, tk.DIPObserver())
					opts.Insight = tk
				}
				res, err := Unlock(chip, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
					t.Fatalf("analytic=%v: secret seed not recovered", analytic)
				}
				return res
			}
			base, fast := run(false), run(true)
			if base.Analytic {
				t.Fatal("SAT-only run reported analytic")
			}
			if !fast.Analytic {
				t.Fatalf("affine core did not short-circuit analytically (iterations=%d)", fast.Iterations)
			}
			if !fast.Converged || !fast.Exact || !fast.Verified {
				t.Fatalf("analytic result flags: %+v", fast)
			}
			// Rank saturation ends the DIP loop: the analytic run never
			// needs more SAT iterations than the SAT-only reference.
			if fast.Iterations > base.Iterations {
				t.Fatalf("analytic run used more iterations (%d) than SAT-only (%d)",
					fast.Iterations, base.Iterations)
			}
			a, b := sortedSeedSet(base.SeedCandidates), sortedSeedSet(fast.SeedCandidates)
			if len(a) != len(b) {
				t.Fatalf("candidate count %d (sat) != %d (analytic)", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("candidate sets diverge at %d: %s != %s", i, a[i], b[i])
				}
			}
		})
	}
}

// TestAffineCrossover pins the headline perf claim at the ledger's recorded
// configuration (affine reference core, scale 16, 8-bit key, seed base
// 100): on XOR-dominated hardware the GF(2)-native path — native rows plus
// the insight feedback loop — must recover the same candidate set as pure
// CNF with strictly fewer than half the solver conflicts, terminating
// analytically.
func TestAffineCrossover(t *testing.T) {
	design, err := LockBenchmark("affine", 8, PerCycle, 16)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		rngSeed := int64(100) + int64(trial)*7919 + 1
		run := func(native bool) *core.Result {
			chip, err := Fabricate(design, rngSeed)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{NativeXor: native}
			if native {
				tk, err := insight.New(design, insight.Options{})
				if err != nil {
					t.Fatal(err)
				}
				opts.OnDIP = satattack.ChainObservers(opts.OnDIP, tk.DIPObserver())
				opts.Insight = tk
			}
			res, err := Unlock(chip, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
				t.Fatalf("native=%v: secret seed not recovered", native)
			}
			return res
		}
		cnfRes, gf2Res := run(false), run(true)
		if !gf2Res.Analytic {
			t.Fatalf("trial %d: affine core did not terminate analytically", trial)
		}
		if c, x := cnfRes.SolverStats.Conflicts, gf2Res.SolverStats.Conflicts; x*2 >= c {
			t.Fatalf("trial %d: GF(2)-native path did not halve conflicts: cnf=%d native=%d", trial, c, x)
		}
		a, b := sortedSeedSet(cnfRes.SeedCandidates), sortedSeedSet(gf2Res.SeedCandidates)
		if len(a) != len(b) {
			t.Fatalf("trial %d: candidate count %d (cnf) != %d (native)", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: candidate sets diverge at %d: %s != %s", trial, i, a[i], b[i])
			}
		}
	}
}

// TestAnalyticExperimentConfig drives the facade path: Analytic on the
// experiment config arms the tracker without any telemetry sinks and the
// trial records the analytic outcome.
func TestAnalyticExperimentConfig(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Benchmark: "s5378",
		KeyBits:   8,
		Policy:    PerCycle,
		Scale:     16,
		Trials:    1,
		SeedBase:  11,
		NativeXor: true,
		Analytic:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSucceeded() {
		t.Fatalf("analytic experiment failed: %+v", res.Trials)
	}
}
