package dynunlock

import (
	"reflect"
	"strings"
	"testing"

	"dynunlock/internal/stream"
)

// TestStreamDoesNotPerturbAttack pins the tentpole's zero-cost guarantee:
// attaching an event bus with no subscribers must leave the attack
// bit-identical — same trials, same solver counters, same candidate
// counts — and must never assign a sequence number (events nobody
// listened for are never numbered).
func TestStreamDoesNotPerturbAttack(t *testing.T) {
	run := func(bus *stream.Bus) []TrialResult {
		t.Helper()
		var log strings.Builder
		cfg := ExperimentConfig{
			Benchmark: "s5378",
			KeyBits:   8,
			Policy:    PerCycle,
			Scale:     16,
			Trials:    3,
			SeedBase:  11,
			Log:       &log,
			Stream:    bus,
		}
		res, err := RunExperiment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trials
	}

	baseline := run(nil)
	bus := stream.NewBus()
	streamed := run(bus)

	// Drop wall-clock fields; everything else must match exactly.
	scrub := func(ts []TrialResult) []TrialResult {
		out := make([]TrialResult, len(ts))
		copy(out, ts)
		for i := range out {
			out[i].Seconds = 0
		}
		return out
	}
	if !reflect.DeepEqual(scrub(baseline), scrub(streamed)) {
		t.Errorf("idle bus perturbed the attack:\nbaseline: %+v\nstreamed: %+v",
			scrub(baseline), scrub(streamed))
	}
	if bus.LastSeq() != 0 {
		t.Errorf("bus assigned %d sequence numbers with no subscriber attached", bus.LastSeq())
	}
}

// TestStreamPublishesDIPEvents covers the live side of the same hook: with
// a subscriber attached, each DIP iteration publishes one "dip" event
// whose iteration numbers count up per trial, plus one "stage" anatomy
// event carrying the iteration's difficulty score.
func TestStreamPublishesDIPEvents(t *testing.T) {
	bus := stream.NewBusSized(4096, 4096)
	sub := bus.Subscribe(0)
	defer sub.Close()

	cfg := ExperimentConfig{
		Benchmark: "s5378",
		KeyBits:   8,
		Policy:    PerCycle,
		Scale:     16,
		Trials:    2,
		SeedBase:  11,
		Stream:    bus,
	}
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Close drains the subscriber: buffered events still pop, then Next
	// reports ok=false instead of blocking on an idle bus.
	bus.Close()
	wantIters := 0
	for _, tr := range res.Trials {
		wantIters += tr.Iterations
	}

	got, stages := 0, 0
	perTrial := map[int]int{}
	for {
		ev, ok, _ := sub.Next(nil, 0)
		if !ok {
			break
		}
		switch ev.Type {
		case stream.TypeDIP:
			trial := ev.Data["trial"].(int)
			iter := ev.Data["iteration"].(int)
			perTrial[trial]++
			if iter != perTrial[trial] {
				t.Fatalf("trial %d: dip iteration %d arrived out of order (want %d)",
					trial, iter, perTrial[trial])
			}
			if s, ok := ev.Data["dip"].(string); !ok || s == "" {
				t.Fatalf("dip event missing dip bits: %+v", ev.Data)
			}
			got++
		case stream.TypeStage:
			if _, ok := ev.Data["difficulty"].(float64); !ok {
				t.Fatalf("stage event missing difficulty score: %+v", ev.Data)
			}
			stages++
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if got != wantIters {
		t.Errorf("published %d dip events, trials report %d iterations", got, wantIters)
	}
	if stages != wantIters {
		t.Errorf("published %d stage events, want one per DIP iteration (%d)", stages, wantIters)
	}
	if sub.Dropped() != 0 {
		t.Errorf("ring dropped %d events; size the test ring above the workload", sub.Dropped())
	}
}
